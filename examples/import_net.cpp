// The §6.1 gateway example.
//
//   philw-gnot% ls /net
//   /net/cs
//   /net/dk
//   philw-gnot% import -a helix /net
//   philw-gnot% ls /net
//   /net/cs /net/dk /net/dns /net/ether0 /net/il /net/tcp /net/udp
//
// gnot is a terminal with only a Datakit connection.  After importing
// helix's /net (union, -a: after), all of helix's networks are usable from
// gnot — it dials TCP *through helix* to reach musca's echo service.
#include <cstdio>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/svc/exportfs.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

static const char kNdb[] = R"(sys=helix
	ip=135.104.9.31 dk=nj/astro/helix
sys=musca
	ip=135.104.9.6 dk=nj/astro/musca
sys=gnot
	dk=nj/astro/gnot
tcp=echo port=7
dk=exportfs
)";

static void Ls(Proc* p, const char* path) {
  auto entries = p->ReadDir(path);
  if (!entries.ok()) {
    std::printf("ls: %s: %s\n", path, entries.error().message().c_str());
    return;
  }
  for (auto& d : *entries) {
    std::printf("%s/%s\n", path, d.name.c_str());
  }
}

int main() {
  auto db = std::make_shared<Ndb>();
  (void)db->Load(kNdb);
  EtherSegment ether(LinkParams::Ether10());
  DatakitSwitch dk;
  Node helix("helix"), musca("musca"), gnot("gnot");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  helix.AddDatakit(&dk, "nj/astro/helix");
  musca.AddDatakit(&dk, "nj/astro/musca");
  gnot.AddDatakit(&dk, "nj/astro/gnot");
  (void)BootNetwork(&helix, db, kNdb);
  (void)BootNetwork(&musca, db, kNdb);
  (void)BootNetwork(&gnot, db, kNdb);

  // helix exports; musca serves echo over TCP.
  auto exp = StartExportfs(std::shared_ptr<Proc>(helix.NewProc().release()),
                           "dk!*!exportfs");
  auto echo = StartEchoService(std::shared_ptr<Proc>(musca.NewProc().release()),
                               "tcp!*!7");
  if (!exp.ok() || !echo.ok()) {
    std::fprintf(stderr, "services failed to start\n");
    return 1;
  }

  auto proc = gnot.NewProcPrivate("philw");
  std::printf("philw-gnot%% ls /net\n");
  Ls(proc.get(), "/net");

  std::printf("philw-gnot%% import -a helix /net\n");
  if (!Import(proc.get(), "dk!nj/astro/helix!exportfs", "/net", "/net", kMAfter).ok()) {
    std::fprintf(stderr, "import failed\n");
    return 1;
  }

  std::printf("philw-gnot%% ls /net\n");
  Ls(proc.get(), "/net");

  // "All the networks connected to helix, not just Datakit, are now
  // available in the terminal."
  std::printf("philw-gnot%% dialing tcp through the imported stack...\n");
  auto cfd = proc->Open("/net/tcp/clone", kORdWr);
  if (!cfd.ok()) {
    std::fprintf(stderr, "no tcp: %s\n", cfd.error().message().c_str());
    return 1;
  }
  auto num = proc->ReadString(*cfd, 16);
  (void)proc->WriteString(*cfd, "connect 135.104.9.6!7");
  auto dfd = proc->Open("/net/tcp/" + *num + "/data", kORdWr);
  if (!dfd.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", dfd.error().message().c_str());
    return 1;
  }
  (void)proc->WriteString(*dfd, "hello musca, via helix");
  auto reply = proc->ReadString(*dfd, 128);
  std::printf("echo says: %s\n", reply.ok() ? reply->c_str() : "(error)");
  (void)proc->Close(*dfd);
  (void)proc->Close(*cfd);
  std::printf("import_net done\n");
  return 0;
}

// Quickstart: assemble a tiny Plan 9 network, dial a service, read the
// conversation's status files — the §2.3 dance end to end in ~60 lines of
// user code.
//
//   two machines (helix, musca) on a simulated 10 Mb/s Ethernet
//   an ndb describing them (§4.1)
//   the connection server translating net!musca!echo (§4.2)
//   dial/announce/listen/accept (§5)
#include <cstdio>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/svc/listen.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

static const char kNdb[] = R"(sys=helix
	dom=helix.research.bell-labs.com
	ip=135.104.9.31 ether=080069022201
sys=musca
	dom=musca.research.bell-labs.com
	ip=135.104.9.6 ether=080069022202
il=echo port=56789
tcp=echo port=7
)";

int main() {
  // --- the world: two machines on one cable --------------------------------
  auto db = std::make_shared<Ndb>();
  if (!db->Load(kNdb).ok()) {
    std::fprintf(stderr, "bad ndb\n");
    return 1;
  }
  EtherSegment ether(LinkParams::Ether10());
  Node helix("helix"), musca("musca");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  (void)BootNetwork(&helix, db, kNdb);
  (void)BootNetwork(&musca, db, kNdb);

  // --- musca announces an echo service --------------------------------------
  auto echo = StartEchoService(std::shared_ptr<Proc>(musca.NewProc().release()),
                               "il!*!echo");
  if (!echo.ok()) {
    std::fprintf(stderr, "announce: %s\n", echo.error().message().c_str());
    return 1;
  }

  // --- helix dials it by symbolic name --------------------------------------
  auto proc = helix.NewProc("glenda");
  std::string dir;
  auto fd = Dial(proc.get(), "net!musca!echo", &dir);
  if (!fd.ok()) {
    std::fprintf(stderr, "dial: %s\n", fd.error().message().c_str());
    return 1;
  }
  std::printf("dialed net!musca!echo -> %s\n", dir.c_str());

  (void)proc->WriteString(*fd, "hello from helix");
  auto reply = proc->ReadString(*fd, 128);
  std::printf("echo replied: %s\n", reply.ok() ? reply->c_str() : "(error)");

  // --- the conversation is a directory of files (§2.3) ----------------------
  for (const char* f : {"local", "remote", "status"}) {
    auto text = proc->ReadFile(dir + "/" + f);
    std::printf("%s/%s: %s", dir.c_str(), f, text.ok() ? text->c_str() : "?\n");
  }

  (void)proc->Close(*fd);
  std::printf("quickstart done\n");
  return 0;
}

// The echo server of §5.2, transcribed from the paper's C listing.
//
//   afd = announce("tcp!*!echo", adir);
//   for(;;){
//       lcfd = listen(adir, ldir);
//       switch(fork()){
//       case 0:
//           dfd = accept(lcfd, ldir);
//           while((n = read(dfd, buf, sizeof(buf))) > 0)
//               write(dfd, buf, n);
//           exits(0);
//       ...
//
// fork() becomes a kproc; everything else is line for line.  A client on a
// second machine dials tcp!*!echo several times concurrently to show the
// per-call processes.
#include <cstdio>
#include <thread>
#include <vector>

#include "src/dial/dial.h"
#include "src/ndb/ndb.h"
#include "src/task/kproc.h"
#include "src/world/boot.h"
#include "src/world/node.h"

using namespace plan9;

// The paper's echo_server(), C++ accent only.
static int EchoServer(Proc* p, std::vector<Kproc>* kids) {
  char adir[40], ldir[40];

  std::string adir_s;
  auto afd = Announce(p, "tcp!*!echo", &adir_s);
  if (!afd.ok()) {
    return -1;
  }
  std::snprintf(adir, sizeof adir, "%s", adir_s.c_str());

  for (int calls = 0; calls < 3; calls++) {  // the paper loops forever
    /* listen for a call */
    std::string ldir_s;
    auto lcfd = Listen(p, adir, &ldir_s);
    if (!lcfd.ok()) {
      return -1;
    }
    std::snprintf(ldir, sizeof ldir, "%s", ldir_s.c_str());

    /* fork a process to echo */
    kids->emplace_back("echo.kid", [p, lcfd = *lcfd, ldir_s] {
      /* accept the call and open the data file */
      auto dfd = Accept(p, lcfd, ldir_s);
      if (!dfd.ok()) {
        return;
      }
      /* echo until EOF */
      char buf[256];
      for (;;) {
        auto n = p->Read(*dfd, buf, sizeof buf);
        if (!n.ok() || *n == 0) {
          break;
        }
        (void)p->Write(*dfd, buf, *n);
      }
      (void)p->Close(*dfd);
      (void)p->Close(lcfd);
    });
  }
  return 0;
}

static const char kNdb[] =
    "sys=helix\n\tip=135.104.9.31\nsys=musca\n\tip=135.104.9.6\ntcp=echo port=7\n";

int main() {
  auto db = std::make_shared<Ndb>();
  (void)db->Load(kNdb);
  EtherSegment ether(LinkParams::Ether10());
  Node helix("helix"), musca("musca");
  helix.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 1},
                 Ipv4Addr::FromOctets(135, 104, 9, 31), Ipv4Addr{0xffffff00});
  musca.AddEther(&ether, MacAddr{8, 0, 0x69, 2, 0x22, 2},
                 Ipv4Addr::FromOctets(135, 104, 9, 6), Ipv4Addr{0xffffff00});
  (void)BootNetwork(&helix, db, kNdb);
  (void)BootNetwork(&musca, db, kNdb);

  auto server_proc = musca.NewProc("bootes");
  std::vector<Kproc> kids;
  Kproc server("echo.server", [&] {
    if (EchoServer(server_proc.get(), &kids) < 0) {
      std::fprintf(stderr, "echo server failed\n");
    }
  });

  // Three concurrent clients from helix.
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; i++) {
    clients.emplace_back([&, i] {
      auto p = helix.NewProc("glenda");
      auto fd = Dial(p.get(), "tcp!135.104.9.6!7");
      if (!fd.ok()) {
        std::fprintf(stderr, "client %d: dial: %s\n", i, fd.error().message().c_str());
        return;
      }
      std::string msg = "client " + std::to_string(i) + " says hi";
      (void)p->WriteString(*fd, msg);
      std::string got;
      char buf[64];
      while (got.size() < msg.size()) {
        auto n = p->Read(*fd, buf, sizeof buf);
        if (!n.ok() || *n == 0) {
          break;
        }
        got.append(buf, *n);
      }
      std::printf("client %d echoed: %s\n", i, got.c_str());
      (void)p->Close(*fd);
    });
  }
  for (auto& c : clients) {
    c.join();
  }
  server.Join();
  for (auto& k : kids) {
    k.Join();
  }
  std::printf("echo_server done\n");
  return 0;
}
